// Package suppress exercises the //lint:ignore machinery: a justified
// suppression that silences a real finding, an unused one, an unknown
// analyzer, a missing justification, and a malformed directive. The
// `want:-1` form expects the diagnostic one line above the comment
// carrying it (driver diagnostics land on the directive's own line).
package suppress

import "time"

// Justified carries a real determinism violation silenced by a
// well-formed, justified directive: no diagnostic, Suppressed == 1.
func Justified() int64 {
	//lint:ignore determinism testdata exercising a justified suppression
	return time.Now().UnixNano()
}

// Unused carries a directive with nothing to silence on its line or
// the next; the driver reports the dead suppression itself.
func Unused() {
	//lint:ignore floateq no comparison ever happens here // want `unused //lint:ignore floateq`
}

// Unknown names an analyzer that does not exist.
func Unknown() {
	//lint:ignore nosuchanalyzer bogus justification // want `unknown analyzer "nosuchanalyzer"`
}

// Unjustified omits the mandatory reason, so the directive is rejected
// and the violation underneath it still fires.
func Unjustified() int64 {
	//lint:ignore determinism
	return time.Now().UnixNano() // want:-1 `needs a justification` // want `time.Now in simulation package`
}

// Malformed is not even a well-shaped ignore directive.
func Malformed() {
	//lint:ignoreall determinism scattershot directives are typos // want `malformed lint directive`
}
