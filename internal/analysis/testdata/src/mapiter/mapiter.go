// Package mapiter seeds ordered-output-from-map-iteration violations
// and the sanctioned collect-then-sort idioms.
package mapiter

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderUnsorted writes map entries straight into a builder: the bytes
// differ run to run.
func RenderUnsorted(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		b.WriteString(fmt.Sprintf("%s=%d\n", k, v)) // want `map iteration writes to a strings.Builder`
	}
	return b.String()
}

// StreamUnsorted writes through fmt.Fprintf to an io.Writer.
func StreamUnsorted(w io.Writer, m map[string]float64) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %g\n", k, v) // want `map iteration writes to a writer via fmt.Fprintf`
	}
}

// CollectUnsorted appends keys that escape the loop unsorted.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appends to "keys", which escapes the loop unsorted`
	}
	return keys
}

// CollectSorted is the sanctioned idiom: collect, sort, then use.
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RenderSorted ranges over the sorted key slice, never the map.
func RenderSorted(m map[string]int) string {
	var b strings.Builder
	for _, k := range CollectSorted(m) {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

// Tally only aggregates; no ordered sink, no finding.
func Tally(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
