// Package servicedet seeds the violations a service-layer package is
// most tempted by, proving the determinism analyzer fires inside
// internal/service's rule set: reading the wall clock for anything a
// response could depend on, drawing job identifiers from global
// math/rand, and spawning ad-hoc worker goroutines instead of letting
// the daemon own them. The sanctioned alternatives (injected clock,
// request-hash ids, blocking worker methods) are shown unflagged.
package servicedet

import (
	"math/rand"
	"time"
)

// Job is a stand-in for the service job record.
type Job struct {
	ID       string
	Enqueued time.Time
}

// Server is a stand-in service core with an injected clock.
type Server struct {
	now   func() time.Time
	queue chan *Job
}

// Admit stamps and identifies a job the wrong way on both counts.
func (s *Server) Admit() *Job {
	j := &Job{
		Enqueued: time.Now(), // want `time.Now in simulation package`
	}
	_ = time.Since(j.Enqueued)               // want `time.Since in simulation package`
	j.ID = string(rune('a' + rand.Intn(26))) // want `global math/rand.Intn`
	return j
}

// Start spawns its own worker, which the daemon must own instead.
func (s *Server) Start() {
	go func() { // want `bare go statement`
		for range s.queue {
		}
	}()
}

// AdmitInjected is the sanctioned shape: the clock arrives via the
// config, so tests inject fakes and responses never depend on it —
// a value reference to time.Now is configuration, not a read.
func AdmitInjected(now func() time.Time) *Job {
	if now == nil {
		now = time.Now
	}
	return &Job{Enqueued: now()}
}

// Worker is the sanctioned shape for concurrency: a blocking method
// the daemon runs on goroutines it owns.
func (s *Server) Worker() {
	for range s.queue {
	}
}
