// Package floateq seeds float-equality violations alongside the three
// sanctioned escapes: NaN self-comparison, zero sentinels, and
// allowlisted exact-key functions.
package floateq

// Close compares computed floats exactly: the canonical latent bug.
func Close(a, b float64) bool {
	return a == b // want `== on float operands`
}

// Differs is the != spelling of the same bug.
func Differs(xs []float64, y float64) bool {
	for _, x := range xs {
		if x != y { // want `!= on float operands`
			return true
		}
	}
	return false
}

// IsNaN uses the idiomatic self-comparison; never flagged.
func IsNaN(x float64) bool {
	return x != x
}

// Guard uses the exact-zero sentinel; never flagged.
func Guard(scale float64) float64 {
	if scale == 0 {
		scale = 1
	}
	return scale
}

// ExactKey is allowlisted by the test config; its comparisons pass.
func ExactKey(a, b float64) bool {
	return a == b
}
