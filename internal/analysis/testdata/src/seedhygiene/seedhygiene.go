// Package seedhygiene seeds RNG-sharing and seed-replay violations in
// pool worker closures, alongside the sanctioned per-task derivations.
package seedhygiene

import (
	"context"

	"repro/internal/mathx"
	"repro/internal/parallel"
)

// SharedState captures one generator and draws from it in every
// worker: a scheduling-dependent race.
func SharedState(ctx context.Context, n int) error {
	rng := mathx.NewRNG(1)
	return parallel.ForEach(ctx, n, func(i int) error {
		_ = rng.Float64() // want `captured \*mathx.RNG "rng" used inside a pool closure`
		return nil
	})
}

// ReplayedSeed constructs a fresh generator per task but from a
// worker-invariant seed: every task replays one stream.
func ReplayedSeed(ctx context.Context, n int, seed int64) error {
	return parallel.ForEach(ctx, n, func(i int) error {
		rng := mathx.NewRNG(seed) // want `mathx.NewRNG seeded with a worker-invariant value`
		_ = rng.Float64()
		return nil
	})
}

// SplitCapture is the sanctioned use of a captured generator: only its
// Split method is touched inside the closure.
func SplitCapture(ctx context.Context, n int) error {
	parent := mathx.NewRNG(1)
	return parallel.ForEach(ctx, n, func(i int) error {
		rng := parent.Split(int64(i))
		_ = rng.Float64()
		return nil
	})
}

// SplitSeedDerivation derives the per-task seed arithmetically.
func SplitSeedDerivation(ctx context.Context, n int, seed int64) ([]float64, error) {
	return parallel.MapCtx(ctx, n, func(_ context.Context, i int) (float64, error) {
		rng := mathx.NewRNG(mathx.SplitSeed(seed, int64(i)))
		return rng.Float64(), nil
	})
}

// IndexedSeeds draws the seed from a per-task table via the closure
// parameter; the argument mentions the task index, so it passes.
func IndexedSeeds(ctx context.Context, seeds []int64) error {
	return parallel.ForEach(ctx, len(seeds), func(i int) error {
		rng := mathx.NewRNG(seeds[i])
		_ = rng.Float64()
		return nil
	})
}
