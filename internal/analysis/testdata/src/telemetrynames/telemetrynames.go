// Package telemetrynames seeds catalog violations against the real
// telemetry API. The test's catalog registers exactly:
// metric "registered.name", metric prefix "cache.", event "chip.drawn".
package telemetrynames

import (
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

// Registered uses only cataloged literals; never flagged.
func Registered() {
	telemetry.GetCounter("registered.name").Add(1)
	events.New("chip.drawn").Emit()
}

// Unregistered uses a well-formed literal the catalog has never heard
// of.
func Unregistered() {
	telemetry.GetCounter("phantom.metric").Add(1) // want `metric name "phantom.metric" is not registered`
}

// BadCharset uses a name outside the [a-z0-9_.] alphabet.
func BadCharset() {
	telemetry.GetGauge("Bad-Name").Set(0) // want `must match`
}

// Dynamic passes a parameter through: unauditable.
func Dynamic(name string) {
	telemetry.GetHistogram(name).Observe(1) // want `must be a string literal`
}

// PrefixRegistered builds a name in a registered dynamic family.
func PrefixRegistered(layer string) {
	telemetry.GetCounter("cache." + layer + ".hits").Add(1)
}

// PrefixUnregistered builds a name in an unknown family.
func PrefixUnregistered(layer string) {
	telemetry.GetCounter("rogue." + layer).Add(1) // want `name family "rogue."\* is not registered`
}

// LocalVar resolves through a variable whose assignments are all
// literal; both alternates are cataloged, so nothing fires.
func LocalVar(drop bool) {
	kind := "chip.drawn"
	if drop {
		kind = "chip.drawn"
	}
	events.New(kind).Emit()
}

// BadEvent emits an unknown event kind.
func BadEvent() {
	events.New("ghost.event").Emit() // want `event name "ghost.event" is not registered`
}
