// Package windownames seeds catalog violations against the rolling
// window registration points. The test's catalog registers exactly:
// metric "service.latency_ns", metric prefix "cache.".
package windownames

import "repro/internal/telemetry"

// Registered uses a cataloged name through both constructors; never
// flagged.
func Registered() {
	telemetry.GetWindow("service.latency_ns").Observe(1)
	telemetry.GetWindowWithUnit("service.latency_ns", "ns").Observe(1)
}

// Unregistered rolls a window under a name the catalog has never
// heard of — the exact drift the analyzer exists to catch, since a
// phantom window name would silently ship a /metricsz family nothing
// gates on.
func Unregistered() {
	telemetry.GetWindow("phantom.rolling_ns").Observe(1) // want `metric name "phantom.rolling_ns" is not registered`
}

// UnregisteredWithUnit proves the unit-carrying constructor is
// audited too.
func UnregisteredWithUnit() {
	telemetry.GetWindowWithUnit("ghost.window_ns", "ns").Observe(1) // want `metric name "ghost.window_ns" is not registered`
}

// BadCharset uses a name outside the [a-z0-9_.] alphabet.
func BadCharset() {
	telemetry.GetWindow("Rolling-P99").Observe(1) // want `must match`
}

// Dynamic passes a parameter through: unauditable.
func Dynamic(name string) {
	telemetry.GetWindow(name).Observe(1) // want `must be a string literal`
}

// PrefixRegistered builds a window name in a registered dynamic
// family.
func PrefixRegistered(layer string) {
	telemetry.GetWindow("cache." + layer + ".wait_ns").Observe(1)
}
