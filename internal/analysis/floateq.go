package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// FloatEqAnalyzer forbids == and != between floating-point operands.
// Nearly every float equality in a numerical codebase is a latent bug:
// accumulated sums, solver outputs, and anything that crossed a
// transcendental function differ in the last ulp between algebraically
// equivalent evaluation orders, so an == that passes today breaks when
// a loop is reassociated or vectorized. Comparisons should go through
// a tolerance (math.Abs(a-b) <= eps) or operate on exactly-derived
// keys.
//
// Three escapes exist for the legitimate cases:
//   - x != x (and x == x), the idiomatic NaN test, is always allowed;
//   - comparison against the literal constant 0 is allowed — the
//     zero-sentinel guard (`if scale == 0 { scale = 1 }`,
//     `if mse == 0 { return inf }`) is exact by construction and
//     pervasive in numerical Go;
//   - functions listed in Config.FloatEqAllow — exact-key comparisons
//     such as cache keys built from exact binary inputs, deterministic
//     sort tie-breaks, or bit-identical replay checks — are exempt
//     wholesale.
var FloatEqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on floating-point operands outside the exact-comparison allowlist",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	rel, ok := pass.Cfg.rel(pass.Pkg.Path)
	if !ok {
		rel = pass.Pkg.Path
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Cfg.FloatEqAllow[rel+"."+funcKey(fd)] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op.String() != "==" && be.Op.String() != "!=") {
					return true
				}
				lt, lok := info.Types[be.X]
				rt, rok := info.Types[be.Y]
				if !lok || !rok || (!isFloat(lt.Type) && !isFloat(rt.Type)) {
					return true
				}
				// x != x / x == x is the NaN test; always exact-safe.
				if sameIdent(be.X, be.Y) {
					return true
				}
				// Zero-sentinel guards compare against a value that is
				// exact in every float representation.
				if isZeroConst(lt) || isZeroConst(rt) {
					return true
				}
				pass.Reportf(be.Pos(), "%s on float operands in %s; compare with a tolerance, or allowlist the function in internal/analysis/config.go if this is an exact-key comparison", be.Op, funcKey(fd))
				return true
			})
		}
	}
}

// funcKey renders a FuncDecl the way Config.FloatEqAllow spells it:
// "F" for functions, "(T).M" / "(*T).M" for methods.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	star := ""
	if se, ok := recv.(*ast.StarExpr); ok {
		star = "*"
		recv = se.X
	}
	// Strip generic type parameters if present.
	if ix, ok := recv.(*ast.IndexExpr); ok {
		recv = ix.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return "(" + star + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

// isZeroConst reports whether the operand is a compile-time constant
// equal to zero.
func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float && v.Kind() != constant.Int {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0
}

// sameIdent reports whether both expressions are the same plain
// identifier (the x != x NaN idiom).
func sameIdent(a, b ast.Expr) bool {
	ai, aok := ast.Unparen(a).(*ast.Ident)
	bi, bok := ast.Unparen(b).(*ast.Ident)
	return aok && bok && ai.Name == bi.Name
}
