package analysis

import "strings"

// Config parameterizes every analyzer. Production runs use
// DefaultConfig; the golden-diagnostic tests build small configs
// pointed at seeded-violation testdata packages.
type Config struct {
	ModuleRoot string // absolute directory holding go.mod
	ModulePath string // module path from go.mod (e.g. "repro")

	// SimPackages are the module-relative package paths whose results
	// must be pure functions of (config, seed): the determinism and
	// seedhygiene analyzers police them. An entry covers the package
	// and all of its subpackages (so "internal/rms" covers every
	// kernel).
	SimPackages []string

	// LayeringRoot is the module-relative directory the import-DAG
	// matrix governs, and AllowedDeps maps each package under it
	// (relative to the root) to the packages it may import from under
	// the same root. Substrates may additionally never import, even
	// transitively via new edges, anything whose path ends in one of
	// SubstrateBans.
	LayeringRoot  string
	AllowedDeps   map[string][]string
	Substrates    []string
	SubstrateBans []string

	// FloatEqAllow lists functions (as "<module-relative pkg>.<func>",
	// methods as "(*T).M" / "(T).M") whose float ==/!= comparisons are
	// deliberate exact-key comparisons: cache keys built from exact
	// binary inputs, sort tie-breaks on already-rounded golden values,
	// exact-zero sentinels.
	FloatEqAllow map[string]bool

	// TelemetryExempt lists module-relative packages skipped by the
	// telemetrynames analyzer: the packages that *define* the metric
	// and event constructors necessarily handle names as variables.
	TelemetryExempt []string

	// Catalog is the registered telemetry/event name vocabulary.
	Catalog *Catalog

	// SuppressionBudget caps the total number of //lint:ignore
	// directives across a run; negative disables the cap.
	SuppressionBudget int
}

// rel strips the module path from an import path, returning ok=false
// for foreign (stdlib or external) paths.
func (c *Config) rel(pkgPath string) (string, bool) {
	if pkgPath == c.ModulePath {
		return ".", true
	}
	rest, ok := strings.CutPrefix(pkgPath, c.ModulePath+"/")
	return rest, ok
}

// isSimPackage reports whether the import path falls under one of the
// configured simulation roots.
func (c *Config) isSimPackage(pkgPath string) bool {
	rel, ok := c.rel(pkgPath)
	if !ok {
		return false
	}
	for _, sim := range c.SimPackages {
		if rel == sim || strings.HasPrefix(rel, sim+"/") {
			return true
		}
	}
	return false
}

// DefaultConfig returns the production configuration: the layering
// matrix (the source of truth layering_test.go now wraps), the
// simulation-package roster, and the exact-comparison allowlist.
// startDir seeds the module-root search (the driver passes ".").
func DefaultConfig(startDir string) (*Config, error) {
	root, modPath, err := ModuleRoot(startDir)
	if err != nil {
		return nil, err
	}
	return &Config{
		ModuleRoot: root,
		ModulePath: modPath,

		SimPackages: []string{
			"internal/chip",
			"internal/core",
			"internal/fault",
			"internal/rms",
			"internal/variation",
			"internal/sim",
			"internal/experiments",
			// The service core promises byte-identical responses for
			// identical requests, so it lives under the same rules: no
			// wall clock (injected via Config.Now), no global rand, no
			// goroutines (the daemon owns them all).
			"internal/service",
		},

		LayeringRoot: "internal",
		// Each internal package may import only the internal packages
		// listed here (stdlib is always allowed). This is the README's
		// layering promise; layering_test.go asserts it through this
		// table on every `go test ./...`.
		AllowedDeps: map[string][]string{
			"mathx":            {},
			"telemetry":        {},
			"telemetry/trace":  {"telemetry"},
			"telemetry/events": {"telemetry"},
			"converge":         {"telemetry"},
			"provenance":       {},
			"parallel":         {"telemetry", "telemetry/trace"},
			"tech":             {"mathx"},
			"variation":        {"mathx", "parallel", "telemetry", "telemetry/events"},
			"chip":             {"converge", "mathx", "parallel", "tech", "telemetry", "telemetry/events", "telemetry/trace", "variation"},
			"power":            {"chip"},
			"sim":              {"mathx"},
			"quality":          {},
			"fault":            {"mathx", "parallel", "telemetry/events"},
			"workload":         {"mathx"},
			"rms":              {"fault", "parallel", "quality", "sim", "telemetry/events"},
			"rms/canneal":      {"fault", "mathx", "rms", "sim", "workload"},
			"rms/ferret":       {"fault", "rms", "sim", "workload"},
			"rms/bodytrack":    {"fault", "mathx", "quality", "rms", "sim", "workload"},
			"rms/xh264":        {"fault", "mathx", "quality", "rms", "sim", "workload"},
			"rms/hotspot":      {"fault", "mathx", "quality", "rms", "sim", "workload"},
			"rms/srad":         {"fault", "mathx", "quality", "rms", "sim", "workload"},
			"rms/btcmine":      {"fault", "rms", "sim"},
			"rms/rmstest":      {"fault", "rms", "sim"},
			"core":             {"chip", "fault", "mathx", "parallel", "power", "rms", "sim", "tech", "telemetry/events", "telemetry/trace"},
			"atlas":            {"chip", "fault", "telemetry/events"},
			"baseline":         {"chip", "power"},
			"analysis":         {},
			"experiments": {"baseline", "chip", "core", "fault", "mathx", "parallel", "power",
				"rms", "rms/bodytrack", "rms/btcmine", "rms/canneal", "rms/ferret",
				"rms/hotspot", "rms/srad", "rms/xh264", "sim", "tech", "telemetry", "telemetry/trace", "variation"},
			"service": {"experiments", "provenance", "telemetry", "telemetry/events"},
			"history": {"converge", "provenance", "telemetry", "telemetry/events"},
		},
		// Substrate purity: the numeric substrate and the device models
		// must never know about chips, benchmarks, or the framework.
		Substrates:    []string{"mathx", "tech", "telemetry", "variation", "quality", "sim", "fault", "workload"},
		SubstrateBans: []string{"/chip", "/core", "/rms", "/power", "/baseline", "/experiments"},

		FloatEqAllow: map[string]bool{
			// Ledger report ordering tie-breaks on exact accumulated
			// sums so the worst-offender ranking is reproducible.
			"internal/fault.(*Ledger).Report": true,
			// Deterministic sort tie-breaks: equal keys must compare
			// exactly equal or the ordering depends on evaluation order.
			"internal/rms/ferret.(*Benchmark).Run": true,
			"internal/sim.(eventQueue).Less":       true,
			// CorruptValue returns either the bit-identical original or
			// different bits; the inequality detects corruption exactly.
			"internal/rms/btcmine.(*Benchmark).Run": true,
			// The rmstest harness pins bit-identical replay — tolerance
			// would defeat its purpose.
			"internal/rms/rmstest.determinism": true,
		},

		TelemetryExempt: []string{"internal/telemetry", "internal/telemetry/events"},

		Catalog: DefaultCatalog(),

		// Every suppression is a justified debt. The tree carries a
		// small number today (wall-clock provenance timing); leave a
		// little headroom, not an open door.
		SuppressionBudget: 8,
	}, nil
}
