package analysis

import (
	"go/ast"
	"go/types"
)

// MapIterAnalyzer guards the artifacts whose bytes are contract: golden
// JSON/CSV/SVG files, NDJSON event logs, manifest hashes, Prometheus
// text. Go's map iteration order is deliberately randomized, so a
// `range` over a map whose body writes into an encoder, string
// builder, writer, or an escaping slice produces different bytes every
// run — exactly the class of bug that silently breaks golden tests and
// -verify-manifest.
//
// Flagged: a range statement whose X is map-typed and whose body
//   - calls a method on a *strings.Builder, *bytes.Buffer,
//     *bufio.Writer, *json.Encoder, or *csv.Writer (or passes one as
//     an argument),
//   - calls fmt.Fprint/Fprintf/Fprintln or io.WriteString, or any
//     method named Write/WriteString/WriteByte/WriteRune, or
//   - appends to a slice declared outside the loop, unless that slice
//     later flows through a sort call in the same function (the
//     collect-keys-then-sort idiom is the sanctioned fix).
//
// The remedy is always the same: collect the keys, sort them, range
// over the sorted slice.
var MapIterAnalyzer = &Analyzer{
	Name: "mapiter",
	Doc:  "forbid map iteration that writes to encoders, builders, writers, or escaping slices unsorted",
	Run:  runMapIter,
}

// sinkTypes are the named types whose methods (or presence as an
// argument) mark a loop body as producing ordered output.
var sinkTypes = map[[2]string]bool{
	{"strings", "Builder"}:       true,
	{"bytes", "Buffer"}:          true,
	{"bufio", "Writer"}:          true,
	{"encoding/json", "Encoder"}: true,
	{"encoding/csv", "Writer"}:   true,
}

// writerMethodNames mark io.Writer-shaped calls regardless of the
// receiver's concrete type.
var writerMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runMapIter(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		// Walk function by function so escaping appends can consult
		// the statements that follow the loop.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(pass, body)
			}
			return true
		})
	}
}

// checkMapRanges inspects one function body (not descending into
// nested function literals, which get their own visit).
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapBody(pass, body, rng)
		return true
	})
}

// checkMapBody reports ordered-output writes inside one map-range body.
func checkMapBody(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sink, what := callWritesOutput(info, n); sink {
				pass.Reportf(n.Pos(), "map iteration writes to %s; iteration order is randomized — collect and sort the keys first", what)
			}
			// append to a slice declared outside the range statement
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && isBuiltin(info, id, "append") && len(n.Args) > 0 {
				if target, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
					obj := info.Uses[target]
					if obj != nil && obj.Pos() < rng.Pos() && !sortedAfter(info, fnBody, rng, obj) {
						pass.Reportf(n.Pos(), "map iteration appends to %q, which escapes the loop unsorted; sort it before use (or sort the keys first)", target.Name)
					}
				}
			}
		}
		return true
	})
}

// callWritesOutput reports whether the call writes bytes to an ordered
// sink, and names the sink for the message.
func callWritesOutput(info *types.Info, call *ast.CallExpr) (bool, string) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			sig := fn.Type().(*types.Signature)
			if sig.Recv() == nil {
				// Package-level writers: fmt.Fprint*, io.WriteString.
				pkg, name := fn.Pkg().Path(), fn.Name()
				if pkg == "fmt" && (name == "Fprint" || name == "Fprintf" || name == "Fprintln") {
					return true, "a writer via fmt." + name
				}
				if pkg == "io" && name == "WriteString" {
					return true, "a writer via io.WriteString"
				}
			} else {
				recv := sig.Recv().Type()
				if p, tn, ok := namedType(recv); ok && sinkTypes[[2]string{p, tn}] {
					return true, "a " + p + "." + tn
				}
				if writerMethodNames[fn.Name()] {
					return true, "a writer (" + fn.Name() + ")"
				}
				if fn.Name() == "Encode" {
					if p, tn, ok := namedType(recv); ok && p == "encoding/json" && tn == "Encoder" {
						return true, "a json.Encoder"
					}
				}
			}
		}
	}
	// A sink passed as an argument (the helper-function pattern).
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok {
			if p, tn, ok := namedType(tv.Type); ok && sinkTypes[[2]string{p, tn}] {
				return true, "a " + p + "." + tn + " passed to a helper"
			}
		}
	}
	return false, ""
}

// sortedAfter reports whether obj (a slice variable appended to inside
// the range loop) is passed to a sort call somewhere after the loop in
// the same function body — the collect-then-sort idiom.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			uses := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					uses = true
				}
				return !uses
			})
			if uses {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes the stdlib sorting entry points.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := funcFor(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// isBuiltin reports whether id denotes the named builtin function.
func isBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
