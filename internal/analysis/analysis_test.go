package analysis

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden-diagnostic convention: a seeded-violation testdata file
// marks each expected finding with
//
//	// want `regex`
//
// on the line the diagnostic lands on, or
//
//	// want:-1 `regex`
//
// with a line offset when the diagnostic's line cannot carry a comment
// of its own (driver diagnostics about //lint:ignore directives land on
// the directive's line, and a line comment cannot follow another line
// comment). The regex is matched against "[analyzer] message". Every
// diagnostic must match exactly one want and every want exactly one
// diagnostic.
var wantRe = regexp.MustCompile("// want(?::(-?[0-9]+))? `([^`]+)`")

type expectation struct {
	key     string // file:line
	re      *regexp.Regexp
	matched bool
}

// parseWants scans the sources of the loaded packages for want
// comments.
func parseWants(t *testing.T, pkgs []*Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			filename := pkg.Fset.Position(f.Pos()).Filename
			data, err := os.ReadFile(filename)
			if err != nil {
				t.Fatalf("reading %s: %v", filename, err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					lineNo := i + 1
					if m[1] != "" {
						off, err := strconv.Atoi(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want offset %q", filename, lineNo, m[1])
						}
						lineNo += off
					}
					re, err := regexp.Compile(m[2])
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %q: %v", filename, i+1, m[2], err)
					}
					wants = append(wants, &expectation{key: fmt.Sprintf("%s:%d", filename, lineNo), re: re})
				}
			}
		}
	}
	return wants
}

// runGolden loads patterns under cfg, runs every analyzer, and checks
// the diagnostics against the want comments bijectively.
func runGolden(t *testing.T, cfg *Config, patterns ...string) Result {
	t.Helper()
	pkgs, err := Load(cfg, patterns)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	res := RunPackages(cfg, pkgs)
	wants := parseWants(t, pkgs)
	for _, d := range res.Diagnostics {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		full := "[" + d.Analyzer + "] " + d.Message
		matched := false
		for _, w := range wants {
			if !w.matched && w.key == key && w.re.MatchString(full) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected diagnostic matching %q, got none", w.key, w.re)
		}
	}
	return res
}

// testConfig starts from the production config and neutralizes the
// parts each golden test overrides: no package is a sim package, no
// package is layering-governed, and the suppression budget is off.
func testConfig(t *testing.T) *Config {
	t.Helper()
	cfg, err := DefaultConfig(".")
	if err != nil {
		t.Fatal(err)
	}
	cfg.SimPackages = nil
	cfg.LayeringRoot = "internal/analysis/testdata/none"
	cfg.SuppressionBudget = -1
	return cfg
}

const tdata = "internal/analysis/testdata/src"

func TestDeterminismGolden(t *testing.T) {
	cfg := testConfig(t)
	cfg.SimPackages = []string{tdata + "/determinism"}
	runGolden(t, cfg, "./"+tdata+"/determinism")
}

// TestServiceDeterminismGolden pins that the determinism analyzer
// keeps firing under the service-layer rule set internal/service is
// registered under: wall-clock reads, global rand draws, and bare
// worker goroutines are findings there too, while the injected-clock
// and blocking-worker shapes the real package uses stay clean.
func TestServiceDeterminismGolden(t *testing.T) {
	cfg := testConfig(t)
	cfg.SimPackages = []string{tdata + "/servicedet"}
	runGolden(t, cfg, "./"+tdata+"/servicedet")
}

func TestMapIterGolden(t *testing.T) {
	runGolden(t, testConfig(t), "./"+tdata+"/mapiter")
}

func TestLayeringGolden(t *testing.T) {
	cfg := testConfig(t)
	cfg.LayeringRoot = tdata + "/layering"
	cfg.AllowedDeps = map[string][]string{"a": {"sink"}, "b": {}, "sink": {}}
	cfg.Substrates = []string{"a"}
	cfg.SubstrateBans = []string{"/sink"}
	runGolden(t, cfg, "./"+tdata+"/layering/...")
}

func TestFloatEqGolden(t *testing.T) {
	cfg := testConfig(t)
	cfg.FloatEqAllow = map[string]bool{tdata + "/floateq.ExactKey": true}
	runGolden(t, cfg, "./"+tdata+"/floateq")
}

func TestTelemetryNamesGolden(t *testing.T) {
	cfg := testConfig(t)
	cfg.Catalog = &Catalog{
		Metrics:        set("registered.name"),
		MetricPrefixes: []string{"cache."},
		Events:         set("chip.drawn"),
	}
	runGolden(t, cfg, "./"+tdata+"/telemetrynames")
}

// TestWindowNamesGolden pins that the rolling-window constructors
// (GetWindow / GetWindowWithUnit) are registration points too: an
// unregistered rolling-metric name fires the same catalog diagnostic
// as the scalar constructors.
func TestWindowNamesGolden(t *testing.T) {
	cfg := testConfig(t)
	cfg.Catalog = &Catalog{
		Metrics:        set("service.latency_ns"),
		MetricPrefixes: []string{"cache."},
	}
	runGolden(t, cfg, "./"+tdata+"/windownames")
}

// TestHistoryNamesGolden pins that the run-history tier's
// self-accounting names (history.appends, history.gate.*, the
// history.* event kinds) go through the same catalog audit as every
// other emit site: an unregistered history metric or event kind is a
// finding, registered ones are clean.
func TestHistoryNamesGolden(t *testing.T) {
	cfg := testConfig(t)
	cfg.Catalog = &Catalog{
		Metrics: set("history.appends", "history.gate.regressions"),
		Events:  set("history.appended"),
	}
	runGolden(t, cfg, "./"+tdata+"/historynames")
}

func TestSeedHygieneGolden(t *testing.T) {
	runGolden(t, testConfig(t), "./"+tdata+"/seedhygiene")
}

func TestSuppressGolden(t *testing.T) {
	cfg := testConfig(t)
	cfg.SimPackages = []string{tdata + "/suppress"}
	res := runGolden(t, cfg, "./"+tdata+"/suppress")
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1 (the justified determinism directive)", res.Suppressed)
	}
}

// TestSuppressionBudgetTrips pins that a run carrying more well-formed
// //lint:ignore directives than the budget allows fails on its own.
func TestSuppressionBudgetTrips(t *testing.T) {
	cfg := testConfig(t)
	cfg.SimPackages = []string{tdata + "/suppress"}
	cfg.SuppressionBudget = 0
	pkgs, err := Load(cfg, []string{"./" + tdata + "/suppress"})
	if err != nil {
		t.Fatal(err)
	}
	res := RunPackages(cfg, pkgs)
	for _, d := range res.Diagnostics {
		if d.Analyzer == "driver" && strings.Contains(d.Message, "suppression budget exceeded") {
			return
		}
	}
	t.Errorf("no budget diagnostic with SuppressionBudget=0; got %d diagnostics", len(res.Diagnostics))
}

// TestCleanTree is the integration gate: the merged tree itself must
// come out of the full analyzer suite with zero findings, exactly as
// `go run ./cmd/accordionvet ./...` and the CI lint job see it.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree source type-check is slow; run without -short")
	}
	cfg, err := DefaultConfig(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, []string{"./internal/...", "./cmd/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("clean tree violated: %s", d)
	}
}
