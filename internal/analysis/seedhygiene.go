package analysis

import (
	"go/ast"
	"go/types"
)

// SeedHygieneAnalyzer polices randomness inside worker closures handed
// to the deterministic pool (parallel.ForEach / ForEachCtx / Map /
// MapCtx). Two bugs keep reappearing in Monte-Carlo code:
//
//   - a *mathx.RNG captured from the enclosing scope and drawn from
//     inside the closure — workers then race on one generator state,
//     and even with a lock the draw order depends on scheduling, so
//     runs stop being reproducible;
//   - mathx.NewRNG(seed) inside the closure with a worker-invariant
//     seed — every task then replays the identical stream, collapsing
//     the Monte-Carlo sample to one realization.
//
// The sanctioned pattern is per-task derivation:
//
//	parallel.MapCtx(ctx, n, func(_ context.Context, i int) (T, error) {
//	    rng := mathx.NewRNG(mathx.SplitSeed(seed, int64(i)))
//	    ...
//	})
//
// Accordingly, inside a worker closure the analyzer flags any use of a
// captured *mathx.RNG other than calling its Split method, and any
// mathx.NewRNG call whose argument neither mentions a closure
// parameter (the task index) nor goes through SplitSeed/Split.
var SeedHygieneAnalyzer = &Analyzer{
	Name: "seedhygiene",
	Doc:  "forbid sharing RNG state or replaying one seed across parallel worker closures",
	Run:  runSeedHygiene,
}

var poolEntryPoints = map[string]bool{"ForEach": true, "ForEachCtx": true, "Map": true, "MapCtx": true}

func runSeedHygiene(pass *Pass) {
	info := pass.Pkg.Info
	parallelPkg := pass.Cfg.ModulePath + "/internal/parallel"
	mathxPkg := pass.Cfg.ModulePath + "/internal/mathx"
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := funcFor(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != parallelPkg || !poolEntryPoints[fn.Name()] {
				return true
			}
			worker, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			checkWorker(pass, worker, mathxPkg)
			return true
		})
	}
}

// checkWorker inspects one worker closure.
func checkWorker(pass *Pass, worker *ast.FuncLit, mathxPkg string) {
	info := pass.Pkg.Info

	// isFree reports whether obj is declared outside the closure.
	isFree := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < worker.Pos() || obj.Pos() > worker.End())
	}
	// params collects the closure's own parameters; an RNG argument
	// derived per task may legitimately flow in through one.
	params := map[types.Object]bool{}
	for _, field := range worker.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}

	ast.Inspect(worker.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// mathx.NewRNG(arg): the argument must vary per task.
			if calleeIs(info, n, mathxPkg, "NewRNG") && len(n.Args) == 1 {
				arg := n.Args[0]
				if !argVariesPerTask(info, arg, params, mathxPkg) {
					pass.Reportf(n.Pos(), "mathx.NewRNG seeded with a worker-invariant value inside a pool closure; every task replays one stream — derive per-task seeds with mathx.SplitSeed(seed, id)")
				}
			}
		case *ast.Ident:
			obj := info.Uses[n]
			if obj == nil || !isFree(obj) || params[obj] {
				return true
			}
			if p, name, ok := namedType(obj.Type()); ok && p == mathxPkg && name == "RNG" {
				if !isSplitReceiver(pass, n) {
					pass.Reportf(n.Pos(), "captured *mathx.RNG %q used inside a pool closure; workers would share one generator state — call its Split method (or SplitSeed) to derive per-task generators", n.Name)
				}
			}
		}
		return true
	})
}

// argVariesPerTask reports whether the seed expression depends on the
// closure's own parameters (the task index) or passes through
// SplitSeed / (*RNG).Split.
func argVariesPerTask(info *types.Info, arg ast.Expr, params map[types.Object]bool, mathxPkg string) bool {
	varies := false
	ast.Inspect(arg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if calleeIs(info, n, mathxPkg, "SplitSeed") {
				varies = true
			}
			if fn := funcFor(info, n); fn != nil && fn.Name() == "Split" {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					varies = true
				}
			}
		case *ast.Ident:
			if params[info.Uses[n]] {
				varies = true
			}
		}
		return !varies
	})
	return varies
}

// isSplitReceiver reports whether id appears as the receiver of a
// .Split(...) call — the one sanctioned use of a captured generator.
func isSplitReceiver(pass *Pass, id *ast.Ident) bool {
	// Find the parent selector by re-walking the file; the AST carries
	// no parent links, so locate the smallest SelectorExpr whose X is
	// exactly this identifier.
	found := false
	for _, f := range pass.Pkg.Files {
		if f.Pos() <= id.Pos() && id.End() <= f.End() {
			ast.Inspect(f, func(n ast.Node) bool {
				if found {
					return false
				}
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok && x == id && sel.Sel.Name == "Split" {
					found = true
					return false
				}
				return true
			})
		}
	}
	return found
}
