package analysis

import (
	"strconv"
	"strings"
)

// LayeringAnalyzer enforces the README's import DAG over the packages
// under Config.LayeringRoot. The matrix in Config.AllowedDeps (which
// layering_test.go used to carry as its own walker) is the single
// source of truth: each governed package may import only the governed
// packages it lists, stdlib always allowed. Substrate packages — the
// numeric substrate and the device models — additionally must never
// import anything whose path ends in one of the banned suffixes, so
// mathx can never grow a sneaky dependency on chips or benchmarks even
// if the matrix is edited carelessly.
var LayeringAnalyzer = &Analyzer{
	Name: "layering",
	Doc:  "enforce the internal-package import DAG and substrate purity",
	Run:  runLayering,
}

func runLayering(pass *Pass) {
	cfg := pass.Cfg
	rel, ok := cfg.rel(pass.Pkg.Path)
	if !ok {
		return
	}
	root := cfg.LayeringRoot + "/"
	pkgRel, governed := strings.CutPrefix(rel, root)
	if !governed {
		return
	}
	allowed, inMatrix := cfg.AllowedDeps[pkgRel]
	if !inMatrix {
		if len(pass.Pkg.Files) > 0 {
			pass.Reportf(pass.Pkg.Files[0].Name.Pos(), "package %s missing from the layering matrix in internal/analysis/config.go", pass.Pkg.Path)
		}
		return
	}
	allowedSet := map[string]bool{}
	for _, a := range allowed {
		allowedSet[a] = true
	}
	substrate := false
	for _, s := range cfg.Substrates {
		if s == pkgRel {
			substrate = true
		}
	}
	prefix := cfg.ModulePath + "/" + root
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if substrate {
				for _, banned := range cfg.SubstrateBans {
					if strings.HasSuffix(path, banned) {
						pass.Reportf(imp.Pos(), "substrate package %s imports %s; substrates must stay pure of chips, benchmarks, and the framework", pass.Pkg.Path, path)
					}
				}
			}
			dep, governedDep := strings.CutPrefix(path, prefix)
			if !governedDep {
				continue
			}
			if !allowedSet[dep] {
				pass.Reportf(imp.Pos(), "%s imports %s, which the layering matrix forbids (allowed: %s)", pkgRel, dep, strings.Join(allowed, ", "))
			}
		}
	}
}
