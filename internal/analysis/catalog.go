package analysis

import "strings"

// Catalog is the checked-in vocabulary of telemetry metric names and
// domain event kinds. The telemetrynames analyzer refuses any
// GetCounter/GetGauge/GetHistogram/StartSpan or events.New call whose
// name is not (a) a string literal matching ^[a-z0-9_.]+$ registered
// here, or (b) a concatenation whose literal prefix is registered
// here. That keeps the /metricsz namespace and the event-kind
// vocabulary (what CI smoke gates and jq pipelines key on) from
// drifting or colliding one emit site at a time: adding a name means
// touching this file, which means the diff shows the vocabulary grew.
type Catalog struct {
	// Metrics are exact telemetry counter/gauge/histogram/span names.
	Metrics map[string]bool
	// MetricPrefixes cover families with a dynamic tail, e.g. the
	// per-cache counters "cache.<Name>.hits".
	MetricPrefixes []string
	// Events are exact domain event kinds.
	Events map[string]bool
	// EventPrefixes cover event families with a dynamic tail (none
	// today; the event vocabulary is deliberately closed).
	EventPrefixes []string
}

// DefaultCatalog returns the repository's registered vocabulary.
func DefaultCatalog() *Catalog {
	return &Catalog{
		Metrics: set(
			// parallel pool
			"parallel.tasks.submitted",
			"parallel.tasks.completed",
			"parallel.panics_recovered",
			"parallel.pool.width",
			"parallel.queue.wait_ns",
			"parallel.worker.busy_ns",
			// chip factory
			"chip.factory.chips_drawn",
			"chip.factory.draw_ns",
			// field sampling (dense + circulant share one histogram)
			"variation.sample_ns",
			// observability tiers' self-accounting
			"events.emitted",
			"events.dropped",
			"trace.dropped",
			// accordiond job queue
			"service.requests",
			"service.rejected",
			"service.coalesced",
			"service.inflight",
			"service.latency_ns",
			"service.run_ns",
			// accordiond SLO burn gauges
			"service.slo.p99_burn_milli",
			"service.slo.error_burn_milli",
			// run-history store and regression gate
			"history.appends",
			"history.gate.checks",
			"history.gate.regressions",
		),
		MetricPrefixes: []string{
			"cache.",           // cache.<Name>.{hits,misses,evictions}
			"converge.",        // converge.<series>.{count,mean_u,ci95_u}
			"experiments.run.", // experiments.run.<experiment id>
		},
		Events: set(
			"chip.drawn",
			"front.measured",
			"quality.scored",
			"fault.injected",
			"drop.triggered",
			"field.sampled",
			"atlas.built",
			// accordiond ops surface
			"service.request",
			"job.state",
			// run-history store and regression gate
			"history.appended",
			"history.checked",
		),
	}
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// lookupExact reports whether name is registered, either exactly or
// under a prefix family.
func lookupExact(name string, exact map[string]bool, prefixes []string) bool {
	if exact[name] {
		return true
	}
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// lookupPrefix reports whether lit is a registered prefix family (or
// extends one: "experiments.run." is fine even if only "experiments."
// were registered the other way around).
func lookupPrefix(lit string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(lit, p) {
			return true
		}
	}
	return false
}
