package atlas

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenAtlas pins the exact bytes of the atlas exports for a
// small deterministic chip with a synthetic attribution overlay. Any
// model or renderer change that moves them must be made visible here.
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/atlas.
func TestGoldenAtlas(t *testing.T) {
	a := Build(smallChip(t))
	a.ApplyLedger(syntheticReport(), "hotspot", "drop")

	renders := map[string]func() ([]byte, error){
		"golden_atlas.json": func() ([]byte, error) {
			var buf bytes.Buffer
			err := a.WriteJSON(&buf)
			return buf.Bytes(), err
		},
		"golden_atlas.csv": func() ([]byte, error) {
			var buf bytes.Buffer
			err := a.WriteCSV(&buf)
			return buf.Bytes(), err
		},
		"golden_atlas_vth.svg": func() ([]byte, error) {
			var buf bytes.Buffer
			err := a.WriteSVG(&buf, "vth")
			return buf.Bytes(), err
		},
		"golden_atlas_distortion.svg": func() ([]byte, error) {
			var buf bytes.Buffer
			err := a.WriteSVG(&buf, "distortion")
			return buf.Bytes(), err
		},
	}
	for name, render := range renders {
		name, render := name, render
		t.Run(name, func(t *testing.T) {
			got, err := render()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name)
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s drifted from its golden output; if intentional, regenerate with UPDATE_GOLDEN=1\n--- got ---\n%s\n--- want ---\n%s",
					name, got, want)
			}
		})
	}
}
