// Package atlas renders per-chip spatial exports: core and cluster
// grids of the variation-afflicted quantities the paper's chip-map
// figures show — threshold-voltage and channel-length deviation, fmax
// and safe frequency at VddNTV, per-cycle timing-error probability,
// per-cluster VddMIN — optionally overlaid with a run's fault-
// attribution ledger (injected-fault counts and per-core distortion
// contribution). One Atlas serializes as JSON (machine consumption),
// CSV (spreadsheets), and standalone SVG heatmaps (the chip-map view).
//
// Every numeric field is rounded to nine significant digits at build
// time so the exports are byte-stable across platforms and suitable
// for golden tests.
package atlas

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/telemetry/events"
)

// CoreCell is one core's row of the atlas.
type CoreCell struct {
	Core    int `json:"core"`
	Cluster int `json:"cluster"`
	// X, Y locate the core on the die grid: cluster tiles of
	// CoreSide x CoreSide cores, GridSide tiles per die edge.
	X          int     `json:"x"`
	Y          int     `json:"y"`
	VthDev     float64 `json:"vth_dev"`    // fractional Vth deviation
	LeffDev    float64 `json:"leff_dev"`   // fractional Leff deviation
	VthV       float64 `json:"vth_v"`      // actual threshold voltage
	FmaxGHz    float64 `json:"fmax_ghz"`   // max frequency at VddNTV
	SafeGHz    float64 `json:"safe_ghz"`   // error-free frequency at VddNTV
	Perr       float64 `json:"perr"`       // timing-error probability at the median core fmax
	Faults     int64   `json:"faults"`     // injected faults charged to this core (ledger)
	Distortion float64 `json:"distortion"` // output-distortion contribution (ledger)
	Engaged    bool    `json:"engaged"`    // core executed tasks in the attributed run
}

// ClusterCell is one voltage cluster's row of the atlas.
type ClusterCell struct {
	Cluster int     `json:"cluster"`
	VddMIN  float64 `json:"vddmin_v"`
}

// Atlas is the spatial export of one sampled chip, optionally overlaid
// with one run's fault-attribution report.
type Atlas struct {
	ChipSeed int64   `json:"chip_seed"`
	Clusters int     `json:"clusters"`
	CoresPer int     `json:"cores_per_cluster"`
	GridSide int     `json:"grid_side"` // cluster tiles per die edge
	CoreSide int     `json:"core_side"` // cores per cluster-tile edge
	VddNTV   float64 `json:"vddntv_v"`

	// Run overlay, zero-valued until ApplyLedger.
	Bench           string  `json:"bench,omitempty"`
	FaultMode       string  `json:"fault_mode,omitempty"`
	TotalDistortion float64 `json:"total_distortion"`

	Cores       []CoreCell    `json:"cores"`
	ClusterRows []ClusterCell `json:"clusters_rows"`
}

// round9 rounds v to nine significant digits, pinning the exports to a
// representation stable across platforms' math libraries.
func round9(v float64) float64 {
	r, err := strconv.ParseFloat(strconv.FormatFloat(v, 'g', 9, 64), 64)
	if err != nil {
		return v
	}
	return r
}

// Build derives the atlas of one sampled chip. Frequencies are
// evaluated at the chip's VddNTV; Perr is each core's timing-error
// probability when clocked at the median core fmax, the same
// population-relevant operating point chip.SummaryMetrics uses.
func Build(ch *chip.Chip) *Atlas {
	cfg := ch.Cfg
	gridSide := 1
	for gridSide*gridSide < cfg.Clusters {
		gridSide++
	}
	coreSide := 1
	for coreSide*coreSide < cfg.CoresPer {
		coreSide++
	}
	vdd := ch.VddNTV()
	a := &Atlas{
		ChipSeed: ch.Seed,
		Clusters: cfg.Clusters,
		CoresPer: cfg.CoresPer,
		GridSide: gridSide,
		CoreSide: coreSide,
		VddNTV:   round9(vdd),
	}
	n := len(ch.Cores)
	fmaxes := make([]float64, n)
	for i := range ch.Cores {
		fmaxes[i] = ch.CoreFmax(i, vdd)
	}
	sorted := append([]float64(nil), fmaxes...)
	sort.Float64s(sorted)
	median := sorted[n/2]

	a.Cores = make([]CoreCell, n)
	for i, co := range ch.Cores {
		k := i % cfg.CoresPer
		a.Cores[i] = CoreCell{
			Core:    co.ID,
			Cluster: co.Cluster,
			X:       (co.Cluster%gridSide)*coreSide + k%coreSide,
			Y:       (co.Cluster/gridSide)*coreSide + k/coreSide,
			VthDev:  round9(co.VthDev),
			LeffDev: round9(co.LeffDev),
			VthV:    round9(co.Vth(cfg.Tech)),
			FmaxGHz: round9(fmaxes[i]),
			SafeGHz: round9(ch.CoreSafeFreq(i, vdd)),
			Perr:    round9(ch.CorePerr(i, vdd, median)),
		}
	}
	a.ClusterRows = make([]ClusterCell, cfg.Clusters)
	for c := range a.ClusterRows {
		a.ClusterRows[c] = ClusterCell{Cluster: c, VddMIN: round9(ch.ClusterVddMIN(c))}
	}
	events.New("atlas.built").
		Int("chip", ch.Seed).
		Int("cores", int64(n)).
		Float("vddntv", round9(vdd)).
		Emit()
	return a
}

// ApplyLedger overlays one run's fault-attribution report onto the
// atlas: per-core injected-fault counts and distortion contributions.
// Report cores outside the chip are ignored. bench and mode label the
// run in the exports.
func (a *Atlas) ApplyLedger(rep fault.Report, bench, mode string) {
	a.Bench = bench
	a.FaultMode = mode
	a.TotalDistortion = round9(rep.TotalDistortion)
	byID := make(map[int]*CoreCell, len(a.Cores))
	for i := range a.Cores {
		byID[a.Cores[i].Core] = &a.Cores[i]
	}
	for _, cr := range rep.Cores {
		cell, ok := byID[cr.Core]
		if !ok {
			continue
		}
		cell.Faults = cr.Faults
		cell.Distortion = round9(cr.Distortion)
		cell.Engaged = true
	}
}

// WriteJSON renders the atlas as indented JSON.
func (a *Atlas) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteCSV renders the per-core table as CSV, one row per core with a
// trailing per-cluster VddMIN column (repeated across the cluster's
// cores so the table stays flat).
func (a *Atlas) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"core,cluster,x,y,vth_dev,leff_dev,vth_v,fmax_ghz,safe_ghz,perr,faults,distortion,engaged,cluster_vddmin_v"); err != nil {
		return err
	}
	for _, c := range a.Cores {
		vddmin := 0.0
		if c.Cluster < len(a.ClusterRows) {
			vddmin = a.ClusterRows[c.Cluster].VddMIN
		}
		engaged := 0
		if c.Engaged {
			engaged = 1
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%g,%g,%g,%g,%g,%g,%d,%g,%d,%g\n",
			c.Core, c.Cluster, c.X, c.Y, c.VthDev, c.LeffDev, c.VthV,
			c.FmaxGHz, c.SafeGHz, c.Perr, c.Faults, c.Distortion, engaged, vddmin); err != nil {
			return err
		}
	}
	return nil
}

// Metrics lists the per-core quantities WriteSVG can map. "vddmin" is
// cluster-granular (every core of a cluster shares its value).
func Metrics() []string {
	return []string{"vth", "leff", "fmax", "safe", "perr", "vddmin", "faults", "distortion"}
}

// metricValue extracts one metric from a core cell.
func (a *Atlas) metricValue(c CoreCell, metric string) (float64, error) {
	switch metric {
	case "vth":
		return c.VthDev, nil
	case "leff":
		return c.LeffDev, nil
	case "fmax":
		return c.FmaxGHz, nil
	case "safe":
		return c.SafeGHz, nil
	case "perr":
		return c.Perr, nil
	case "vddmin":
		if c.Cluster < len(a.ClusterRows) {
			return a.ClusterRows[c.Cluster].VddMIN, nil
		}
		return 0, nil
	case "faults":
		return float64(c.Faults), nil
	case "distortion":
		return c.Distortion, nil
	}
	return 0, fmt.Errorf("atlas: unknown metric %q (want one of %v)", metric, Metrics())
}

// WriteDir writes the atlas's full export set into dir (creating it):
// atlas.json, atlas.csv, and one atlas_<metric>.svg heatmap per
// Metrics() entry. It returns the paths written, in a fixed order.
func (a *Atlas) WriteDir(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("atlas: %w", err)
	}
	var paths []string
	write := func(name string, render func(io.Writer) error) error {
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			return fmt.Errorf("atlas: %w", err)
		}
		if err := render(f); err != nil {
			f.Close()
			return fmt.Errorf("atlas: writing %s: %w", p, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("atlas: %w", err)
		}
		paths = append(paths, p)
		return nil
	}
	if err := write("atlas.json", a.WriteJSON); err != nil {
		return nil, err
	}
	if err := write("atlas.csv", a.WriteCSV); err != nil {
		return nil, err
	}
	for _, m := range Metrics() {
		metric := m
		if err := write("atlas_"+metric+".svg", func(w io.Writer) error {
			return a.WriteSVG(w, metric)
		}); err != nil {
			return nil, err
		}
	}
	return paths, nil
}

// DirFlag registers the shared -atlas flag on fs and returns the
// destination, mirroring telemetry.ModeFlag / events.PathFlag so the
// flag cannot drift between the cmd binaries.
func DirFlag(fs *flag.FlagSet) *string {
	return fs.String("atlas", "",
		"write per-chip spatial exports (JSON, CSV, SVG heatmaps) into this directory")
}
