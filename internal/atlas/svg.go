package atlas

import (
	"fmt"
	"io"
	"strings"
)

// SVG geometry: each core is one cell; cluster tiles get a visible gap
// so the die's voltage-domain structure reads at a glance.
const (
	svgCell    = 22 // px per core cell
	svgGap     = 6  // px between cluster tiles
	svgMargin  = 14 // px around the die
	svgLegendH = 46 // px reserved under the die for the legend
)

// WriteSVG renders a standalone SVG heatmap of one metric over the
// die: cluster tiles of core cells colored on a blue-to-red ramp
// scaled to the metric's observed range, each cell carrying a tooltip
// with its exact value. The output is deterministic for a given atlas
// (integer geometry, integer-lerped colors, %.4g value formatting), so
// golden tests can compare it byte for byte.
func (a *Atlas) WriteSVG(w io.Writer, metric string) error {
	vals := make([]float64, len(a.Cores))
	lo, hi := 0.0, 0.0
	for i, c := range a.Cores {
		v, err := a.metricValue(c, metric)
		if err != nil {
			return err
		}
		vals[i] = v
		if i == 0 || v < lo {
			lo = v
		}
		if i == 0 || v > hi {
			hi = v
		}
	}
	tile := a.CoreSide * svgCell
	dieW := a.GridSide*tile + (a.GridSide-1)*svgGap
	width := dieW + 2*svgMargin
	height := dieW + 2*svgMargin + svgLegendH

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `  <rect width="%d" height="%d" fill="#ffffff"/>`+"\n", width, height)
	title := fmt.Sprintf("chip %d — %s", a.ChipSeed, metric)
	if a.Bench != "" {
		title += fmt.Sprintf(" (%s, %s)", a.Bench, a.FaultMode)
	}
	fmt.Fprintf(&b, `  <title>%s</title>`+"\n", xmlEscape(title))

	for i, c := range a.Cores {
		cx, cy := c.Cluster%a.GridSide, c.Cluster/a.GridSide
		x := svgMargin + cx*(tile+svgGap) + (c.X-cx*a.CoreSide)*svgCell
		y := svgMargin + cy*(tile+svgGap) + (c.Y-cy*a.CoreSide)*svgCell
		fmt.Fprintf(&b, `  <rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#dddddd" stroke-width="1">`,
			x, y, svgCell, svgCell, rampColor(vals[i], lo, hi))
		fmt.Fprintf(&b, `<title>core %d cluster %d: %s = %.4g</title></rect>`+"\n",
			c.Core, c.Cluster, metric, vals[i])
	}

	// Legend: the color ramp with its endpoints.
	ly := svgMargin + dieW + 16
	steps := 24
	lw := dieW / steps
	for s := 0; s < steps; s++ {
		frac := float64(s) / float64(steps-1)
		v := lo + frac*(hi-lo)
		fmt.Fprintf(&b, `  <rect x="%d" y="%d" width="%d" height="10" fill="%s"/>`+"\n",
			svgMargin+s*lw, ly, lw, rampColor(v, lo, hi))
	}
	fmt.Fprintf(&b, `  <text x="%d" y="%d" font-family="monospace" font-size="11">%.4g</text>`+"\n",
		svgMargin, ly+24, lo)
	fmt.Fprintf(&b, `  <text x="%d" y="%d" font-family="monospace" font-size="11" text-anchor="end">%.4g</text>`+"\n",
		svgMargin+dieW, ly+24, hi)
	fmt.Fprintf(&b, `  <text x="%d" y="%d" font-family="monospace" font-size="11" text-anchor="middle">%s</text>`+"\n",
		width/2, ly+24, xmlEscape(metric))
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// rampColor maps v in [lo, hi] onto a blue-to-red ramp via integer
// interpolation (no float-formatting in the color channel, so the SVG
// bytes are platform-stable). A degenerate range renders mid-ramp.
func rampColor(v, lo, hi float64) string {
	frac := 0.5
	if hi > lo {
		frac = (v - lo) / (hi - lo)
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	// #2166ac (blue) -> #f7f7f7 (white) -> #b2182b (red), the classic
	// diverging map.
	type rgb struct{ r, g, b int }
	blue, white, red := rgb{0x21, 0x66, 0xac}, rgb{0xf7, 0xf7, 0xf7}, rgb{0xb2, 0x18, 0x2b}
	lerp := func(a, b rgb, t float64) rgb {
		return rgb{
			a.r + int(t*float64(b.r-a.r)),
			a.g + int(t*float64(b.g-a.g)),
			a.b + int(t*float64(b.b-a.b)),
		}
	}
	var c rgb
	if frac < 0.5 {
		c = lerp(blue, white, frac*2)
	} else {
		c = lerp(white, red, (frac-0.5)*2)
	}
	return fmt.Sprintf("#%02x%02x%02x", c.r, c.g, c.b)
}

// xmlEscape escapes the five XML special characters for text nodes.
func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
