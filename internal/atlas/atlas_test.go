package atlas

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chip"
	"repro/internal/fault"
)

// smallChip samples a 4-cluster, 4-core-per-cluster chip: big enough
// to exercise the tile geometry, small enough for byte-stable goldens.
func smallChip(t *testing.T) *chip.Chip {
	t.Helper()
	cfg := chip.DefaultConfig()
	cfg.Clusters = 4
	cfg.CoresPer = 4
	cfg.CoreMemBits = 16 * 1024 * 8
	cfg.ClusterMemBits = 256 * 1024 * 8
	ch, err := chip.New(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// syntheticReport builds a deterministic attribution overlay.
func syntheticReport() fault.Report {
	return fault.Report{
		ChipSeed:        7,
		EngagedCores:    4,
		Injections:      6,
		TotalDistortion: 0.25,
		Cores: []fault.CoreReport{
			{Core: 2, Cluster: 0, Faults: 4, Distortion: 0.2, Share: 0.8},
			{Core: 9, Cluster: 2, Faults: 2, Distortion: 0.05, Share: 0.2},
		},
	}
}

func TestBuildGeometryAndValues(t *testing.T) {
	ch := smallChip(t)
	a := Build(ch)
	if a.ChipSeed != 7 || a.Clusters != 4 || a.CoresPer != 4 {
		t.Fatalf("header = %+v", a)
	}
	if a.GridSide != 2 || a.CoreSide != 2 {
		t.Fatalf("grid geometry = %dx%d tiles of %dx%d", a.GridSide, a.GridSide, a.CoreSide, a.CoreSide)
	}
	if len(a.Cores) != 16 || len(a.ClusterRows) != 4 {
		t.Fatalf("rows: %d cores, %d clusters", len(a.Cores), len(a.ClusterRows))
	}
	seen := map[[2]int]bool{}
	for _, c := range a.Cores {
		if c.X < 0 || c.X >= 4 || c.Y < 0 || c.Y >= 4 {
			t.Errorf("core %d at (%d,%d) outside the 4x4 die grid", c.Core, c.X, c.Y)
		}
		if seen[[2]int{c.X, c.Y}] {
			t.Errorf("grid position (%d,%d) assigned twice", c.X, c.Y)
		}
		seen[[2]int{c.X, c.Y}] = true
		if c.FmaxGHz <= 0 || c.SafeGHz <= 0 || c.VthV <= 0 {
			t.Errorf("core %d has non-physical values %+v", c.Core, c)
		}
		if c.Perr < 0 || c.Perr > 1 {
			t.Errorf("core %d perr = %v", c.Core, c.Perr)
		}
	}
	vddntv := 0.0
	for _, cl := range a.ClusterRows {
		if cl.VddMIN <= 0 {
			t.Errorf("cluster %d VddMIN = %v", cl.Cluster, cl.VddMIN)
		}
		if cl.VddMIN > vddntv {
			vddntv = cl.VddMIN
		}
	}
	if math.Abs(vddntv-a.VddNTV) > 1e-9 {
		t.Errorf("VddNTV %v is not the max cluster VddMIN %v", a.VddNTV, vddntv)
	}
}

func TestApplyLedger(t *testing.T) {
	a := Build(smallChip(t))
	a.ApplyLedger(syntheticReport(), "hotspot", "drop")
	if a.Bench != "hotspot" || a.FaultMode != "drop" || a.TotalDistortion != 0.25 {
		t.Fatalf("overlay header = %+v", a)
	}
	var charged int
	for _, c := range a.Cores {
		if c.Core == 2 {
			if c.Faults != 4 || c.Distortion != 0.2 || !c.Engaged {
				t.Errorf("core 2 overlay = %+v", c)
			}
			charged++
		}
		if c.Core == 9 {
			if c.Faults != 2 || !c.Engaged {
				t.Errorf("core 9 overlay = %+v", c)
			}
			charged++
		}
		if c.Core != 2 && c.Core != 9 && (c.Faults != 0 || c.Engaged) {
			t.Errorf("unengaged core %d charged: %+v", c.Core, c)
		}
	}
	if charged != 2 {
		t.Fatalf("charged %d cores, want 2", charged)
	}
	// A report core outside the chip is ignored, not a panic.
	a.ApplyLedger(fault.Report{Cores: []fault.CoreReport{{Core: 999}}}, "x", "y")
}

func TestWriteJSONParses(t *testing.T) {
	a := Build(smallChip(t))
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Atlas
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON does not parse: %v", err)
	}
	if len(back.Cores) != len(a.Cores) || back.ChipSeed != a.ChipSeed {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestWriteCSVShape(t *testing.T) {
	a := Build(smallChip(t))
	var buf bytes.Buffer
	if err := a.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(a.Cores) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(a.Cores))
	}
	nCols := len(strings.Split(lines[0], ","))
	for i, l := range lines {
		if got := len(strings.Split(l, ",")); got != nCols {
			t.Fatalf("line %d has %d columns, header has %d", i, got, nCols)
		}
	}
}

func TestWriteSVGWellFormed(t *testing.T) {
	a := Build(smallChip(t))
	a.ApplyLedger(syntheticReport(), "hotspot", "drop")
	for _, m := range Metrics() {
		var buf bytes.Buffer
		if err := a.WriteSVG(&buf, m); err != nil {
			t.Fatalf("WriteSVG(%s): %v", m, err)
		}
		// Well-formed XML with one rect per core plus background/legend.
		dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
		rects := 0
		for {
			tok, err := dec.Token()
			if err != nil {
				break
			}
			if se, ok := tok.(xml.StartElement); ok && se.Name.Local == "rect" {
				rects++
			}
		}
		if rects < len(a.Cores) {
			t.Errorf("SVG %s has %d rects for %d cores", m, rects, len(a.Cores))
		}
	}
	var buf bytes.Buffer
	if err := a.WriteSVG(&buf, "nope"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestWriteDir(t *testing.T) {
	a := Build(smallChip(t))
	dir := filepath.Join(t.TempDir(), "atlas")
	paths, err := a.WriteDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2+len(Metrics()) {
		t.Fatalf("WriteDir wrote %d files, want %d", len(paths), 2+len(Metrics()))
	}
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("missing artifact %s: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("artifact %s is empty", p)
		}
	}
}

func TestRampColorEndpoints(t *testing.T) {
	if c := rampColor(0, 0, 1); c != "#2166ac" {
		t.Errorf("low endpoint = %s", c)
	}
	if c := rampColor(1, 0, 1); c != "#b2182b" {
		t.Errorf("high endpoint = %s", c)
	}
	if c := rampColor(5, 5, 5); c == "" {
		t.Error("degenerate range produced no color")
	}
}
