package mathx

import (
	"math"
	"testing"
)

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(re, im []float64, inverse bool) ([]float64, []float64) {
	n := len(re)
	or := make([]float64, n)
	oi := make([]float64, n)
	sign := -2 * math.Pi
	if inverse {
		sign = 2 * math.Pi
	}
	for j := 0; j < n; j++ {
		var sr, si float64
		for k := 0; k < n; k++ {
			s, c := math.Sincos(sign * float64(j) * float64(k) / float64(n))
			sr += re[k]*c - im[k]*s
			si += re[k]*s + im[k]*c
		}
		if inverse {
			sr /= float64(n)
			si /= float64(n)
		}
		or[j], oi[j] = sr, si
	}
	return or, oi
}

func randComplex(n int, rng *RNG) ([]float64, []float64) {
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = rng.Normal(0, 1)
		im[i] = rng.Normal(0, 1)
	}
	return re, im
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Radix-2 and Bluestein lengths both must match the naive DFT.
func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := NewRNG(42)
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 31, 32, 100, 128, 243} {
		re, im := randComplex(n, rng)
		wantRe, wantIm := naiveDFT(re, im, false)
		p := NewFFTPlan(n)
		p.Forward(re, im)
		tol := 1e-9 * float64(n)
		if d := maxAbsDiff(re, wantRe); d > tol {
			t.Errorf("n=%d: forward real error %g", n, d)
		}
		if d := maxAbsDiff(im, wantIm); d > tol {
			t.Errorf("n=%d: forward imag error %g", n, d)
		}
	}
}

func TestFFTInverseMatchesNaive(t *testing.T) {
	rng := NewRNG(43)
	for _, n := range []int{2, 3, 8, 12, 32, 100} {
		re, im := randComplex(n, rng)
		wantRe, wantIm := naiveDFT(re, im, true)
		p := NewFFTPlan(n)
		p.Inverse(re, im)
		tol := 1e-9 * float64(n)
		if d := maxAbsDiff(re, wantRe); d > tol {
			t.Errorf("n=%d: inverse real error %g", n, d)
		}
		if d := maxAbsDiff(im, wantIm); d > tol {
			t.Errorf("n=%d: inverse imag error %g", n, d)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := NewRNG(44)
	for _, n := range []int{1, 2, 4, 6, 16, 48, 64, 129, 256} {
		re, im := randComplex(n, rng)
		origRe := append([]float64(nil), re...)
		origIm := append([]float64(nil), im...)
		p := NewFFTPlan(n)
		p.Forward(re, im)
		p.Inverse(re, im)
		tol := 1e-10 * float64(n)
		if d := maxAbsDiff(re, origRe); d > tol {
			t.Errorf("n=%d: round-trip real error %g", n, d)
		}
		if d := maxAbsDiff(im, origIm); d > tol {
			t.Errorf("n=%d: round-trip imag error %g", n, d)
		}
	}
}

// A plan is reusable: a second transform through the same plan gives
// the same answer as a fresh plan (scratch is fully overwritten).
func TestFFTPlanReuse(t *testing.T) {
	rng := NewRNG(45)
	for _, n := range []int{16, 12} {
		p := NewFFTPlan(n)
		re1, im1 := randComplex(n, rng)
		warmRe := append([]float64(nil), re1...)
		warmIm := append([]float64(nil), im1...)
		p.Forward(warmRe, warmIm) // dirty the scratch
		gotRe := append([]float64(nil), re1...)
		gotIm := append([]float64(nil), im1...)
		p.Forward(gotRe, gotIm)
		wantRe, wantIm := naiveDFT(re1, im1, false)
		if maxAbsDiff(gotRe, wantRe) > 1e-9*float64(n) || maxAbsDiff(gotIm, wantIm) > 1e-9*float64(n) {
			t.Errorf("n=%d: reused plan diverges from naive DFT", n)
		}
	}
}

// naiveDFT2D transforms a w x h row-major grid by definition.
func naiveDFT2D(re, im []float64, w, h int) ([]float64, []float64) {
	or := make([]float64, w*h)
	oi := make([]float64, w*h)
	for v := 0; v < h; v++ {
		for u := 0; u < w; u++ {
			var sr, si float64
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					ang := -2 * math.Pi * (float64(u)*float64(x)/float64(w) + float64(v)*float64(y)/float64(h))
					s, c := math.Sincos(ang)
					r, i := re[y*w+x], im[y*w+x]
					sr += r*c - i*s
					si += r*s + i*c
				}
			}
			or[v*w+u], oi[v*w+u] = sr, si
		}
	}
	return or, oi
}

func TestFFT2DMatchesNaive(t *testing.T) {
	rng := NewRNG(46)
	for _, dims := range [][2]int{{4, 4}, {8, 4}, {3, 5}, {1, 8}, {8, 1}, {6, 12}} {
		w, h := dims[0], dims[1]
		re, im := randComplex(w*h, rng)
		wantRe, wantIm := naiveDFT2D(re, im, w, h)
		p := NewFFT2DPlan(w, h)
		p.Forward(re, im)
		tol := 1e-9 * float64(w*h)
		if d := maxAbsDiff(re, wantRe); d > tol {
			t.Errorf("%dx%d: forward real error %g", w, h, d)
		}
		if d := maxAbsDiff(im, wantIm); d > tol {
			t.Errorf("%dx%d: forward imag error %g", w, h, d)
		}
	}
}

func TestFFT2DRoundTrip(t *testing.T) {
	rng := NewRNG(47)
	w, h := 16, 8
	re, im := randComplex(w*h, rng)
	origRe := append([]float64(nil), re...)
	origIm := append([]float64(nil), im...)
	p := NewFFT2DPlan(w, h)
	p.Forward(re, im)
	p.Inverse(re, im)
	if maxAbsDiff(re, origRe) > 1e-9 || maxAbsDiff(im, origIm) > 1e-9 {
		t.Error("2-D round trip diverges")
	}
}

// The per-transform path must not allocate: the circulant sampler's
// zero-allocation draw contract depends on it.
func TestFFTTransformDoesNotAllocate(t *testing.T) {
	for _, n := range []int{64, 48} { // radix-2 and Bluestein
		p := NewFFTPlan(n)
		re := make([]float64, n)
		im := make([]float64, n)
		re[1] = 1
		allocs := testing.AllocsPerRun(20, func() {
			p.Forward(re, im)
			p.Inverse(re, im)
		})
		if allocs != 0 {
			t.Errorf("n=%d: %g allocs per transform pair, want 0", n, allocs)
		}
	}
	p := NewFFT2DPlan(16, 8)
	re := make([]float64, 16*8)
	im := make([]float64, 16*8)
	allocs := testing.AllocsPerRun(20, func() {
		p.Forward(re, im)
		p.Inverse(re, im)
	})
	if allocs != 0 {
		t.Errorf("2-D: %g allocs per transform pair, want 0", allocs)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 63: 64, 64: 64, 65: 128}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFTRejectsBadLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFFTPlan(0) did not panic")
		}
	}()
	NewFFTPlan(0)
}
