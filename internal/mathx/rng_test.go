package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	g := NewRNG(7)
	c1 := g.Split(1)
	g2 := NewRNG(7)
	// Splitting must not depend on how many draws the parent made before
	// — it consumes exactly one parent draw per split.
	_ = g2
	x1 := make([]float64, 500)
	for i := range x1 {
		x1[i] = c1.Float64()
	}
	c2 := NewRNG(7).Split(2)
	x2 := make([]float64, 500)
	for i := range x2 {
		x2[i] = c2.Float64()
	}
	if r := Pearson(x1, x2); math.Abs(r) > 0.15 {
		t.Errorf("sibling streams correlate: r=%.3f", r)
	}
}

func TestRNGSplitStable(t *testing.T) {
	a := NewRNG(99).Split(5)
	b := NewRNG(99).Split(5)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Split is not reproducible")
		}
	}
}

func TestSplitSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for id := int64(0); id < 1000; id++ {
		s := SplitSeed(123, id)
		if seen[s] {
			t.Fatalf("SplitSeed collision at id %d", id)
		}
		seen[s] = true
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(1)
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = g.Normal(3, 2)
	}
	if m := Mean(xs); math.Abs(m-3) > 0.02 {
		t.Errorf("mean = %.4f, want ~3", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 0.02 {
		t.Errorf("stddev = %.4f, want ~2", s)
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(2)
	f := func(seed int64) bool {
		v := g.Uniform(-1.5, 2.5)
		return v >= -1.5 && v < 2.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBernoulliRate(t *testing.T) {
	g := NewRNG(3)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %.4f", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(4)
	p := g.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
