// Package mathx provides the numerical substrate shared by every other
// package in the repository: deterministic pseudo-random number
// generation, probability distributions and their tails, descriptive
// statistics, histograms, and small linear-algebra helpers used by the
// spatial-correlation machinery.
//
// Everything in this package is deterministic given a seed. Experiments
// throughout the repository derive child seeds with Split so that adding
// a new consumer of randomness never perturbs existing streams.
package mathx

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source. It wraps math/rand with
// convenience samplers and a stable stream-splitting scheme.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child generator identified by id.
// Children with distinct ids produce decorrelated streams, and the
// mapping (seed, id) -> stream is stable across runs.
func (g *RNG) Split(id int64) *RNG {
	// SplitMix64-style avalanche of the pair keeps child streams
	// decorrelated even for adjacent ids.
	z := uint64(g.r.Int63()) ^ (uint64(id) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return NewRNG(int64(z & math.MaxInt64))
}

// SplitSeed returns a derived seed without constructing a generator.
func SplitSeed(seed, id int64) int64 {
	z := uint64(seed) ^ (uint64(id) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & math.MaxInt64)
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Normal returns a sample from N(mu, sigma^2).
func (g *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*g.r.NormFloat64()
}

// StdNormal returns a sample from N(0, 1).
func (g *RNG) StdNormal() float64 { return g.r.NormFloat64() }

// LogNormal returns a sample whose logarithm is N(mu, sigma^2).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }
