package mathx

import (
	"math"
	"testing"
)

// FuzzFFTSizes runs the planned FFT at arbitrary lengths — power-of-two
// (radix-2), everything else (Bluestein) — against the O(n^2) reference
// DFT from fft_test.go, and checks Inverse(Forward(x)) returns x. This
// is the transform the circulant field sampler trusts for bit-stable
// embeddings, so every reachable length must agree with the definition,
// not just the sizes the table tests enumerate.
func FuzzFFTSizes(f *testing.F) {
	f.Add(uint16(1), int64(1))
	f.Add(uint16(8), int64(42))
	f.Add(uint16(12), int64(7))
	f.Add(uint16(243), int64(-9))
	f.Add(uint16(257), int64(1234567))
	f.Fuzz(func(t *testing.T, rawN uint16, seed int64) {
		// Cap the length so the O(n^2) reference stays fast; 1..300
		// covers both kernels, prime lengths, and the 2n-1 padding edge.
		n := 1 + int(rawN)%300
		rng := NewRNG(seed)
		re, im := randComplex(n, rng)
		origRe := append([]float64(nil), re...)
		origIm := append([]float64(nil), im...)

		wantRe, wantIm := naiveDFT(re, im, false)
		p := NewFFTPlan(n)
		if p.N() != n {
			t.Fatalf("NewFFTPlan(%d).N() = %d", n, p.N())
		}
		p.Forward(re, im)
		tol := 1e-9 * float64(n)
		if d := maxAbsDiff(re, wantRe); d > tol {
			t.Fatalf("n=%d seed=%d: forward real error %g > %g", n, seed, d, tol)
		}
		if d := maxAbsDiff(im, wantIm); d > tol {
			t.Fatalf("n=%d seed=%d: forward imag error %g > %g", n, seed, d, tol)
		}

		p.Inverse(re, im)
		tol = 1e-10 * float64(n)
		if d := maxAbsDiff(re, origRe); d > tol {
			t.Fatalf("n=%d seed=%d: round-trip real error %g > %g", n, seed, d, tol)
		}
		if d := maxAbsDiff(im, origIm); d > tol {
			t.Fatalf("n=%d seed=%d: round-trip imag error %g > %g", n, seed, d, tol)
		}
		for i := range re {
			if math.IsNaN(re[i]) || math.IsNaN(im[i]) {
				t.Fatalf("n=%d seed=%d: NaN at index %d after round trip", n, seed, i)
			}
		}
	})
}
