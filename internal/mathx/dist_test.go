package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStdNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{3, 0.9986501019683699},
	}
	for _, c := range cases {
		if got := StdNormalCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDF(%g) = %.15f, want %.15f", c.x, got, c.want)
		}
	}
}

func TestStdNormalTailDeep(t *testing.T) {
	// Tail values must stay meaningful far beyond float64's 1-CDF range.
	cases := []struct{ x, want float64 }{
		{6, 9.865876450376946e-10},
		{8, 6.220960574271786e-16},
		{10, 7.619853024160525e-24},
		{15, 3.6709661993126986e-51},
	}
	for _, c := range cases {
		got := StdNormalTail(c.x)
		if got <= 0 || math.Abs(got/c.want-1) > 1e-6 {
			t.Errorf("Tail(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1 - 1e-9} {
		x := StdNormalQuantile(p)
		if got := StdNormalCDF(x); math.Abs(got-p) > 1e-9*math.Max(p, 1e-12) && math.Abs(got-p) > 1e-12 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
}

func TestTailQuantileRoundTrip(t *testing.T) {
	for _, q := range []float64{1e-300, 1e-100, 1e-20, 1e-12, 1e-6, 0.01, 0.4} {
		x := StdNormalTailQuantile(q)
		got := StdNormalTail(x)
		if math.Abs(math.Log(got)-math.Log(q)) > 1e-6 {
			t.Errorf("Tail(TailQuantile(%g)) = %g", q, got)
		}
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa == 0 || pb == 0 || pa == pb {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return StdNormalQuantile(pa) <= StdNormalQuantile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestInterpMonotone(t *testing.T) {
	xs := []float64{0, 1, 2, 4}
	ys := []float64{0, 10, 20, 40}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1.5, 15}, {3, 30}, {4, 40}, {9, 40},
	}
	for _, c := range cases {
		if got := InterpMonotone(xs, ys, c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Interp(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestInvertMonotone(t *testing.T) {
	f := func(x float64) float64 { return x*x*x + x }
	x := InvertMonotone(f, 10, 0, 5)
	if math.Abs(f(x)-10) > 1e-8 {
		t.Errorf("InvertMonotone: f(%g) = %g, want 10", x, f(x))
	}
	// Out-of-range targets clamp to endpoints.
	if got := InvertMonotone(f, -5, 0, 5); got != 0 {
		t.Errorf("low clamp = %g", got)
	}
	if got := InvertMonotone(f, 1e9, 0, 5); got != 5 {
		t.Errorf("high clamp = %g", got)
	}
}

func TestNormalCDFScaled(t *testing.T) {
	// NormalCDF(x, mu, sigma) == StdNormalCDF((x-mu)/sigma).
	cases := []struct{ x, mu, sigma float64 }{
		{0, 0, 1}, {3, 1, 2}, {-4, -2, 0.5}, {10, 3, 7},
	}
	for _, c := range cases {
		got := NormalCDF(c.x, c.mu, c.sigma)
		want := StdNormalCDF((c.x - c.mu) / c.sigma)
		if math.Abs(got-want) > 1e-14 {
			t.Errorf("NormalCDF(%v) = %g, want %g", c, got, want)
		}
	}
}

func TestLerp(t *testing.T) {
	if Lerp(2, 6, 0.5) != 4 || Lerp(2, 6, 0) != 2 || Lerp(2, 6, 1) != 6 {
		t.Error("Lerp wrong")
	}
}
