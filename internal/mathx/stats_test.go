package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %g", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("stddev = %g", s)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("got (%g,%g)", min, max)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("p50 = %g", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("p0 = %g", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("p100 = %g", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Errorf("p25 = %g", p)
	}
}

func TestHistogramCoversAll(t *testing.T) {
	xs := []float64{-10, 0.1, 0.2, 0.5, 0.9, 42}
	counts, edges := Histogram(xs, 0, 1, 4)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram lost samples: %d of %d", total, len(xs))
	}
	if len(edges) != 5 || edges[0] != 0 || edges[4] != 1 {
		t.Errorf("bad edges %v", edges)
	}
}

func TestHistogramProperty(t *testing.T) {
	g := NewRNG(5)
	f := func(n uint8) bool {
		m := int(n%50) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = g.Uniform(-2, 2)
		}
		counts, _ := Histogram(xs, -1, 1, 8)
		tot := 0
		for _, c := range counts {
			tot += c
		}
		return tot == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, r2 := LinFit(xs, ys)
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Errorf("fit = (%g, %g, %g)", a, b, r2)
	}
}

func TestPowerFitExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.7)
	}
	c, p, r2 := PowerFit(xs, ys)
	if math.Abs(c-3) > 1e-9 || math.Abs(p-1.7) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("power fit = (%g, %g, %g)", c, p, r2)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %g", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %g", r)
	}
}

func TestMonotone(t *testing.T) {
	if !Monotone([]float64{1, 2, 2, 3}, 0) {
		t.Error("non-decreasing rejected")
	}
	if Monotone([]float64{1, 2, 1.5, 3}, 0.1) {
		t.Error("large dip accepted")
	}
	if !Monotone([]float64{1, 2, 1.95, 3}, 0.1) {
		t.Error("dip within tolerance rejected")
	}
}
