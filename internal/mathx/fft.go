package mathx

import "math"

// This file is the repository's zero-dependency FFT: an iterative
// radix-2 Cooley-Tukey transform for power-of-two lengths and a
// Bluestein chirp-z fallback for every other length, exposed through
// precomputed plans so the hot path (the circulant-embedding field
// sampler in internal/variation) performs no allocation per transform.
//
// Conventions: Forward computes the unnormalized DFT
// X[j] = sum_k x[k] exp(-2*pi*i*j*k/n); Inverse applies the conjugate
// kernel and divides by n, so Inverse(Forward(x)) == x up to rounding.

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFTPlan holds the twiddle tables and scratch for length-n complex
// transforms. Plans are cheap to build (O(n) memory, O(n) setup for
// powers of two; O(m log m) setup for Bluestein lengths) and reusable
// for any number of transforms.
//
// A plan's transform methods reuse internal scratch, so one plan must
// not run concurrent transforms; build one plan per goroutine (the
// tables are small) or serialize calls.
type FFTPlan struct {
	n int

	// Radix-2 tables (n a power of two): bit-reversal permutation and
	// the first n/2 roots of unity exp(-2*pi*i*k/n).
	perm []int32
	wre  []float64
	wim  []float64

	// Bluestein tables (any n): chirp a[k] = exp(-i*pi*k^2/n), the
	// padded FFT of the conjugate chirp, and scratch of the padded
	// power-of-two length m >= 2n-1.
	blu *bluesteinPlan
}

type bluesteinPlan struct {
	m        int       // padded power-of-two convolution length
	inner    *FFTPlan  // radix-2 plan of length m
	are, aim []float64 // chirp a[k], length n
	bre, bim []float64 // FFT of the wrapped conjugate chirp, length m
	ure, uim []float64 // scratch, length m
}

// NewFFTPlan builds a plan for length-n transforms. n must be >= 1.
func NewFFTPlan(n int) *FFTPlan {
	if n < 1 {
		panic("mathx: FFT length must be >= 1")
	}
	p := &FFTPlan{n: n}
	if n&(n-1) == 0 {
		p.initRadix2()
	} else {
		p.initBluestein()
	}
	return p
}

// N returns the transform length the plan was built for.
func (p *FFTPlan) N() int { return p.n }

func (p *FFTPlan) initRadix2() {
	n := p.n
	p.perm = make([]int32, n)
	shift := 64 - uint(log2(n))
	for i := range p.perm {
		p.perm[i] = int32(reverse64(uint64(i)) >> shift)
	}
	p.wre = make([]float64, n/2)
	p.wim = make([]float64, n/2)
	for k := range p.wre {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.wre[k], p.wim[k] = c, s
	}
}

func (p *FFTPlan) initBluestein() {
	n := p.n
	m := NextPow2(2*n - 1)
	b := &bluesteinPlan{
		m:     m,
		inner: NewFFTPlan(m),
		are:   make([]float64, n),
		aim:   make([]float64, n),
		bre:   make([]float64, m),
		bim:   make([]float64, m),
		ure:   make([]float64, m),
		uim:   make([]float64, m),
	}
	for k := 0; k < n; k++ {
		// k*k mod 2n keeps the chirp angle exact for large k.
		kk := (k * k) % (2 * n)
		s, c := math.Sincos(-math.Pi * float64(kk) / float64(n))
		b.are[k], b.aim[k] = c, s
	}
	// Wrapped conjugate chirp: B[k] = conj(a[k]) for k < n, mirrored
	// into the tail so the circular convolution realizes the linear one.
	for k := 0; k < n; k++ {
		b.bre[k], b.bim[k] = b.are[k], -b.aim[k]
		if k > 0 {
			b.bre[m-k], b.bim[m-k] = b.are[k], -b.aim[k]
		}
	}
	b.inner.Forward(b.bre, b.bim)
	p.blu = b
}

// log2 of a power of two.
func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// reverse64 reverses the bits of v (math/bits.Reverse64 without the
// import, keeping this file self-contained).
func reverse64(v uint64) uint64 {
	v = v>>32 | v<<32
	const m1 = 0x0000ffff0000ffff
	v = v>>16&m1 | v&m1<<16
	const m2 = 0x00ff00ff00ff00ff
	v = v>>8&m2 | v&m2<<8
	const m3 = 0x0f0f0f0f0f0f0f0f
	v = v>>4&m3 | v&m3<<4
	const m4 = 0x3333333333333333
	v = v>>2&m4 | v&m4<<2
	const m5 = 0x5555555555555555
	v = v>>1&m5 | v&m5<<1
	return v
}

// Forward transforms (re, im) in place to the unnormalized DFT. Both
// slices must have length N().
func (p *FFTPlan) Forward(re, im []float64) { p.transform(re, im, false) }

// Inverse transforms (re, im) in place to the inverse DFT, including
// the 1/n scaling.
func (p *FFTPlan) Inverse(re, im []float64) { p.transform(re, im, true) }

func (p *FFTPlan) transform(re, im []float64, inverse bool) {
	if len(re) != p.n || len(im) != p.n {
		panic("mathx: FFT buffer length mismatch")
	}
	if p.n == 1 {
		return
	}
	if p.blu != nil {
		p.bluestein(re, im, inverse)
		return
	}
	p.radix2(re, im, inverse)
	if inverse {
		inv := 1 / float64(p.n)
		for i := range re {
			re[i] *= inv
			im[i] *= inv
		}
	}
}

// radix2 runs the iterative Cooley-Tukey butterflies in place (no
// 1/n scaling; the caller handles inverse normalization).
func (p *FFTPlan) radix2(re, im []float64, inverse bool) {
	n := p.n
	for i, j := range p.perm {
		if int32(i) < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for blk := 0; blk < n; blk += size {
			tw := 0
			for j := blk; j < blk+half; j++ {
				wr, wi := p.wre[tw], p.wim[tw]
				if inverse {
					wi = -wi
				}
				k := j + half
				tr := re[k]*wr - im[k]*wi
				ti := re[k]*wi + im[k]*wr
				re[k] = re[j] - tr
				im[k] = im[j] - ti
				re[j] += tr
				im[j] += ti
				tw += step
			}
		}
	}
}

// bluestein computes the arbitrary-length DFT as a chirp-modulated
// circular convolution on the padded power-of-two inner plan.
func (p *FFTPlan) bluestein(re, im []float64, inverse bool) {
	n, b := p.n, p.blu
	m := b.m
	// u[k] = x[k] * a[k], zero-padded to m. The inverse transform uses
	// the conjugate chirp throughout.
	for k := 0; k < n; k++ {
		ar, ai := b.are[k], b.aim[k]
		if inverse {
			ai = -ai
		}
		b.ure[k] = re[k]*ar - im[k]*ai
		b.uim[k] = re[k]*ai + im[k]*ar
	}
	for k := n; k < m; k++ {
		b.ure[k], b.uim[k] = 0, 0
	}
	b.inner.radix2(b.ure, b.uim, false)
	// Pointwise multiply by FFT(B) (conjugated for the inverse), then
	// invert the inner transform manually (conjugate trick, 1/m scale).
	for k := 0; k < m; k++ {
		br, bi := b.bre[k], b.bim[k]
		if inverse {
			bi = -bi
		}
		ur, ui := b.ure[k], b.uim[k]
		b.ure[k] = ur*br - ui*bi
		b.uim[k] = ur*bi + ui*br
	}
	for k := 0; k < m; k++ {
		b.uim[k] = -b.uim[k]
	}
	b.inner.radix2(b.ure, b.uim, false)
	scale := 1 / float64(m)
	for k := 0; k < m; k++ {
		b.ure[k] *= scale
		b.uim[k] *= -scale
	}
	// X[j] = a[j] * conv[j]; inverse additionally scales by 1/n.
	outScale := 1.0
	if inverse {
		outScale = 1 / float64(n)
	}
	for j := 0; j < n; j++ {
		ar, ai := b.are[j], b.aim[j]
		if inverse {
			ai = -ai
		}
		re[j] = (b.ure[j]*ar - b.uim[j]*ai) * outScale
		im[j] = (b.ure[j]*ai + b.uim[j]*ar) * outScale
	}
}

// FFT2DPlan transforms W x H row-major complex grids in place: a
// length-W plan across every row, then a length-H plan down every
// column. Like FFTPlan, a 2-D plan reuses internal scratch and must
// not run concurrent transforms.
type FFT2DPlan struct {
	w, h     int
	row, col *FFTPlan
	cre, cim []float64 // one column of scratch, length h
}

// NewFFT2DPlan builds a plan for W x H transforms (both >= 1).
func NewFFT2DPlan(w, h int) *FFT2DPlan {
	if w < 1 || h < 1 {
		panic("mathx: FFT2D dimensions must be >= 1")
	}
	p := &FFT2DPlan{w: w, h: h, row: NewFFTPlan(w), cre: make([]float64, h), cim: make([]float64, h)}
	if h == w {
		p.col = p.row
	} else {
		p.col = NewFFTPlan(h)
	}
	return p
}

// Dims returns the plan's (W, H).
func (p *FFT2DPlan) Dims() (w, h int) { return p.w, p.h }

// Forward transforms the W x H row-major grid (re, im) in place to its
// unnormalized 2-D DFT.
func (p *FFT2DPlan) Forward(re, im []float64) { p.transform(re, im, false) }

// Inverse transforms (re, im) in place to the inverse 2-D DFT,
// including the 1/(W*H) scaling.
func (p *FFT2DPlan) Inverse(re, im []float64) { p.transform(re, im, true) }

func (p *FFT2DPlan) transform(re, im []float64, inverse bool) {
	if len(re) != p.w*p.h || len(im) != p.w*p.h {
		panic("mathx: FFT2D buffer length mismatch")
	}
	for y := 0; y < p.h; y++ {
		row := y * p.w
		p.row.transform(re[row:row+p.w], im[row:row+p.w], inverse)
	}
	if p.h == 1 {
		return
	}
	for x := 0; x < p.w; x++ {
		for y := 0; y < p.h; y++ {
			p.cre[y] = re[y*p.w+x]
			p.cim[y] = im[y*p.w+x]
		}
		p.col.transform(p.cre, p.cim, inverse)
		for y := 0; y < p.h; y++ {
			re[y*p.w+x] = p.cre[y]
			im[y*p.w+x] = p.cim[y]
		}
	}
}
