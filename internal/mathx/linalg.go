package mathx

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// ErrNotPositiveDefinite reports a Cholesky factorization failure.
var ErrNotPositiveDefinite = errors.New("mathx: matrix is not positive definite")

// Cholesky computes the lower-triangular L with L*L^T = m for a
// symmetric positive-definite m. A tiny jitter is added to the diagonal
// to absorb rounding when the matrix is only semi-definite (as exact
// correlation matrices of co-located points are).
func Cholesky(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("mathx: Cholesky of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	const jitter = 1e-10
	for j := 0; j < n; j++ {
		d := m.At(j, j) + jitter
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, fmt.Errorf("%w: pivot %d is %g", ErrNotPositiveDefinite, j, d)
		}
		sj := math.Sqrt(d)
		l.Set(j, j, sj)
		for i := j + 1; i < n; i++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/sj)
		}
	}
	return l, nil
}

// MulVec returns m * v.
func (m *Matrix) MulVec(v []float64) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, r := range row {
			s += r * v[j]
		}
		out[i] = s
	}
	return out
}

// LowerMulVec returns L * v exploiting L's lower-triangular structure,
// roughly halving the work relative to MulVec.
func (m *Matrix) LowerMulVec(v []float64) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : i*m.Cols+i+1]
		s := 0.0
		for j, r := range row {
			s += r * v[j]
		}
		out[i] = s
	}
	return out
}

// Grid2D is a dense scalar field over a regular W x H lattice. It backs
// the thermal solver, image kernels, and variation maps.
type Grid2D struct {
	W, H int
	V    []float64
}

// NewGrid2D allocates a zeroed W x H grid.
func NewGrid2D(w, h int) *Grid2D {
	return &Grid2D{W: w, H: h, V: make([]float64, w*h)}
}

// At returns the value at column x, row y.
func (g *Grid2D) At(x, y int) float64 { return g.V[y*g.W+x] }

// Set assigns the value at column x, row y.
func (g *Grid2D) Set(x, y int, v float64) { g.V[y*g.W+x] = v }

// Clone returns a deep copy of the grid.
func (g *Grid2D) Clone() *Grid2D {
	c := NewGrid2D(g.W, g.H)
	copy(c.V, g.V)
	return c
}

// Fill assigns v to every cell.
func (g *Grid2D) Fill(v float64) {
	for i := range g.V {
		g.V[i] = v
	}
}

// Bilinear samples the grid at fractional coordinates (x, y) measured in
// cell units, clamping to the boundary.
func (g *Grid2D) Bilinear(x, y float64) float64 {
	x = Clamp(x, 0, float64(g.W-1))
	y = Clamp(y, 0, float64(g.H-1))
	x0, y0 := int(x), int(y)
	x1, y1 := x0+1, y0+1
	if x1 >= g.W {
		x1 = g.W - 1
	}
	if y1 >= g.H {
		y1 = g.H - 1
	}
	tx, ty := x-float64(x0), y-float64(y0)
	top := Lerp(g.At(x0, y0), g.At(x1, y0), tx)
	bot := Lerp(g.At(x0, y1), g.At(x1, y1), tx)
	return Lerp(top, bot, ty)
}
