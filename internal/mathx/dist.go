package mathx

import "math"

// NormalCDF returns P(X <= x) for X ~ N(mu, sigma^2).
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// StdNormalCDF returns P(X <= x) for X ~ N(0, 1).
func StdNormalCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// StdNormalTail returns P(X > x) for X ~ N(0, 1), accurate deep into the
// tail (down to ~1e-300) where 1-CDF would lose all precision.
func StdNormalTail(x float64) float64 { return 0.5 * math.Erfc(x/math.Sqrt2) }

// StdNormalPDF returns the standard normal density at x.
func StdNormalPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// StdNormalQuantile returns the x with P(X <= x) = p for X ~ N(0, 1).
// It uses the Acklam rational approximation refined by one Halley step,
// giving ~1e-15 relative accuracy over p in (0, 1).
func StdNormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement.
	e := StdNormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// StdNormalTailQuantile returns x with P(X > x) = q, stable for tiny q
// (q down to ~1e-300) where StdNormalQuantile(1-q) would round to +Inf.
func StdNormalTailQuantile(q float64) float64 {
	if q >= 0.5 {
		return StdNormalQuantile(1 - q)
	}
	if q <= 0 {
		return math.Inf(1)
	}
	// Solve StdNormalTail(x) = q by Newton iteration on the log-tail,
	// seeded with the asymptotic expansion x ~ sqrt(-2 ln q).
	x := math.Sqrt(-2 * math.Log(q))
	for i := 0; i < 60; i++ {
		t := StdNormalTail(x)
		if t <= 0 {
			break
		}
		// d/dx ln tail = -pdf/tail.
		step := (math.Log(t) - math.Log(q)) * t / StdNormalPDF(x)
		x += step
		if math.Abs(step) < 1e-14*math.Max(1, math.Abs(x)) {
			break
		}
	}
	return x
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b by t in [0, 1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// InterpMonotone evaluates the piecewise-linear function through the
// points (xs[i], ys[i]) at x. xs must be strictly increasing. Values
// outside the domain clamp to the boundary ys.
func InterpMonotone(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return math.NaN()
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (x - xs[lo]) / (xs[hi] - xs[lo])
	return Lerp(ys[lo], ys[hi], t)
}

// InvertMonotone finds x with f(x) = target for a monotone-increasing f
// on [lo, hi] by bisection. It returns the closest endpoint when the
// target lies outside f's range.
func InvertMonotone(f func(float64) float64, target, lo, hi float64) float64 {
	flo, fhi := f(lo), f(hi)
	if target <= flo {
		return lo
	}
	if target >= fhi {
		return hi
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if f(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*math.Max(1, math.Abs(hi)) {
			break
		}
	}
	return 0.5 * (lo + hi)
}
