package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the smallest and largest elements of xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return s[n-1]
	}
	return Lerp(s[lo], s[lo+1], frac)
}

// Histogram bins xs into nbins equal-width bins over [lo, hi] and
// returns the per-bin counts together with the bin edges
// (len(edges) == nbins+1). Values outside the range clamp to the
// boundary bins, so counts always sum to len(xs).
func Histogram(xs []float64, lo, hi float64, nbins int) (counts []int, edges []float64) {
	if nbins <= 0 || hi <= lo {
		return nil, nil
	}
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	w := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts, edges
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples (xs[i], ys[i]).
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinFit fits ys = a + b*xs by least squares and returns (a, b, r2).
func LinFit(xs, ys []float64) (a, b, r2 float64) {
	n := len(xs)
	if n < 2 || n != len(ys) {
		return math.NaN(), math.NaN(), math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return my, 0, 0
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return a, b, r2
}

// PowerFit fits ys = c * xs^p on the positive pairs by log-log least
// squares and returns (c, p, r2 of the log fit).
func PowerFit(xs, ys []float64) (c, p, r2 float64) {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	a, b, r := LinFit(lx, ly)
	return math.Exp(a), b, r
}

// Monotone reports whether xs is non-decreasing within tolerance tol:
// every step down is at most tol in magnitude.
func Monotone(xs []float64, tol float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1]-tol {
			return false
		}
	}
	return true
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
