package mathx

import (
	"math"
	"testing"
)

func TestCholeskyReconstructs(t *testing.T) {
	// A = B*B^T + n*I is symmetric positive definite for any B.
	g := NewRNG(11)
	n := 20
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = g.Normal(0, 1)
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b.At(i, k) * b.At(j, k)
			}
			if i == j {
				s += float64(n)
			}
			a.Set(i, j, s)
		}
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			if math.Abs(s-a.At(i, j)) > 1e-6*math.Abs(a.At(i, j))+1e-6 {
				t.Fatalf("LL^T mismatch at (%d,%d): %g vs %g", i, j, s, a.At(i, j))
			}
		}
	}
	// Strictly-upper part must be zero.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if l.At(i, j) != 0 {
				t.Fatalf("upper triangle nonzero at (%d,%d)", i, j)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3 and -1
	if _, err := Cholesky(a); err == nil {
		t.Error("indefinite matrix accepted")
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Error("non-square matrix accepted")
	}
}

func TestLowerMulVecMatchesMulVec(t *testing.T) {
	g := NewRNG(12)
	n := 15
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			l.Set(i, j, g.Normal(0, 1))
		}
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = g.Normal(0, 1)
	}
	a, b := l.MulVec(v), l.LowerMulVec(v)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("mismatch at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestGrid2DBilinear(t *testing.T) {
	grid := NewGrid2D(3, 3)
	// f(x, y) = x + 10y is reproduced exactly by bilinear interpolation.
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			grid.Set(x, y, float64(x)+10*float64(y))
		}
	}
	cases := []struct{ x, y, want float64 }{
		{0, 0, 0}, {2, 2, 22}, {0.5, 0, 0.5}, {1, 1.5, 16}, {1.25, 0.75, 8.75},
		{-1, -1, 0}, {5, 5, 22}, // clamped
	}
	for _, c := range cases {
		if got := grid.Bilinear(c.x, c.y); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Bilinear(%g,%g) = %g, want %g", c.x, c.y, got, c.want)
		}
	}
}

func TestGrid2DCloneIndependent(t *testing.T) {
	g := NewGrid2D(2, 2)
	g.Fill(1)
	c := g.Clone()
	c.Set(0, 0, 99)
	if g.At(0, 0) != 1 {
		t.Error("clone aliases parent")
	}
}
